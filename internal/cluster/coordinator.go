package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"p2psize/internal/graph"
	"p2psize/internal/monitor"
	"p2psize/internal/overlay"
	"p2psize/internal/registry"
	"p2psize/internal/transport"
	"p2psize/internal/xrand"
)

// Config drives one coordinator run.
type Config struct {
	// Plan is the target topology; its alive nodes must be exactly
	// 0..N-1, one per daemon. Required.
	Plan *graph.Graph
	// MaxDeg is the overlay degree cap for joins (0 = 10).
	MaxDeg int
	// Addrs lists pre-started daemons to drive, one address per plan
	// node. Empty bootstraps len(plan) in-process daemons on ephemeral
	// 127.0.0.1 ports instead.
	Addrs []string
	// Estimators is the roster; every descriptor must have
	// SupportsTransport. Required.
	Estimators []registry.Descriptor
	// Opts carries the families' tunable knobs.
	Opts registry.Options
	// Seed fixes each family's rng stream (seed + StreamOffset); the
	// live and simulated runs share it, which is what makes the benign
	// case bit-equal.
	Seed uint64
	// Samples is the estimations per family (0 = 3).
	Samples int
	// Cadence is the simulated time between samples (0 = 10). It spaces
	// the monitor grid; wall time is however long the estimations take.
	Cadence float64
	// Tolerance is the accepted relative live-vs-simulated divergence
	// (0 = 0.05).
	Tolerance float64
	// RTO and Retries tune the control-plane transport (0 = defaults).
	RTO     time.Duration
	Retries int
	// Teardown sends a shutdown RPC to every daemon when the run ends —
	// how the smoke script gets externally started daemons to exit.
	Teardown bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Family is one estimator family's cross-validation outcome.
type Family struct {
	// Name is the canonical registry name.
	Name string
	// Live and Sim are the per-sample raw estimates of the live-cluster
	// and simulated runs.
	Live, Sim []float64
	// MaxDivergence is max |live/sim - 1| over the samples (+Inf when
	// exactly one side failed a sample; 0 for the benign bit-equal case).
	MaxDivergence float64
	// Messages is the live run's metered protocol traffic.
	Messages uint64
}

// Report is the outcome of a coordinator run.
type Report struct {
	// Nodes is the cluster size.
	Nodes int
	// Families holds the per-family cross-validation, in roster order.
	Families []Family
	// Tolerance is the applied bound and Within whether every family's
	// MaxDivergence respected it.
	Tolerance float64
	Within    bool
	// Departed lists daemons that stopped answering during the run.
	Departed []transport.NodeID
	// Transport is the coordinator transport's delivery accounting.
	Transport transport.Stats
}

// pingSource is the coordinator's LiveSource: every grid tick it pings
// the daemons still considered alive and Leaves the ones that exhausted
// the retransmission budget, so the overlay mirror tracks real liveness.
type pingSource struct {
	tr       transport.Transport
	departed []transport.NodeID
	logf     func(string, ...any)
}

func (s *pingSource) Refresh(net *overlay.Network, t float64) error {
	for _, id := range append([]transport.NodeID(nil), net.Graph().AliveIDs()...) {
		//detlint:allow meterseam — liveness probes are control-plane RPC, not metered protocol traffic
		if _, err := s.tr.Request(id, "ping", nil); err != nil {
			if !errors.Is(err, transport.ErrPeerUnreachable) {
				return err
			}
			if net.Size() <= 1 {
				return fmt.Errorf("cluster: daemon %d unreachable and no peers left", id)
			}
			net.Leave(id)
			s.departed = append(s.departed, id)
			if s.logf != nil {
				s.logf("daemon %d stopped answering at t=%g; removed from the live overlay", id, t)
			}
		}
	}
	return nil
}

// Run bootstraps (or adopts) the daemons, wires them to the plan
// topology, runs the roster over the live cluster and over a simulated
// overlay on the identical topology, and reports the per-family
// divergence against the tolerance.
func Run(cfg Config) (*Report, error) {
	if cfg.Plan == nil {
		return nil, errors.New("cluster: Config.Plan is required")
	}
	n := cfg.Plan.NumAlive()
	if n < 2 {
		return nil, fmt.Errorf("cluster: plan has %d nodes; need >= 2", n)
	}
	for i := 0; i < n; i++ {
		if !cfg.Plan.Alive(graph.NodeID(i)) {
			return nil, fmt.Errorf("cluster: plan node IDs must be dense 0..%d (node %d is not alive)", n-1, i)
		}
	}
	if len(cfg.Estimators) == 0 {
		return nil, errors.New("cluster: Config.Estimators is required")
	}
	for _, d := range cfg.Estimators {
		if !d.SupportsTransport {
			return nil, fmt.Errorf("cluster: estimator %q does not support the live transport (snapshot-based); drop it from the roster", d.Name)
		}
	}
	maxDeg := cfg.MaxDeg
	if maxDeg == 0 {
		maxDeg = 10
	}
	samples := cfg.Samples
	if samples == 0 {
		samples = 3
	}
	cadence := cfg.Cadence
	if cadence == 0 {
		cadence = 10
	}
	tolerance := cfg.Tolerance
	if tolerance == 0 {
		tolerance = 0.05
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Daemons: adopt the given addresses or bootstrap in-process.
	addrs := cfg.Addrs
	if len(addrs) == 0 {
		nodes := make([]*Node, 0, n)
		defer func() {
			for _, nd := range nodes {
				nd.Close()
			}
		}()
		for i := 0; i < n; i++ {
			nd, err := NewNode("127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("cluster: bootstrap daemon %d: %w", i, err)
			}
			nodes = append(nodes, nd)
			addrs = append(addrs, nd.Addr())
		}
		logf("bootstrapped %d in-process daemons on 127.0.0.1", n)
	} else if len(addrs) != n {
		return nil, fmt.Errorf("cluster: %d daemon addresses for a %d-node plan", len(addrs), n)
	}

	// The coordinator's own transport: control-plane RPCs plus the live
	// overlay's protocol traffic.
	coord, err := transport.NewUDP(transport.UDPConfig{
		Addr: "127.0.0.1:0", Self: graph.None, RTO: cfg.RTO, Retries: cfg.Retries,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator socket: %w", err)
	}
	defer coord.Close()
	for i := 0; i < n; i++ {
		if err := coord.SetPeer(graph.NodeID(i), addrs[i]); err != nil {
			return nil, err
		}
	}

	// Assign IDs and neighbor tables per the plan, then read the tables
	// back and assemble the live topology from the daemons' own answers —
	// the overlay the estimators run on is what the cluster reports, not
	// what the coordinator intended.
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		nbs := planNeighbors(cfg.Plan, id, addrs)
		payload, err := json.Marshal(assignPayload{ID: id, Neighbors: nbs})
		if err != nil {
			return nil, err
		}
		//detlint:allow meterseam — topology assignment is control-plane RPC, not metered protocol traffic
		if _, err := coord.Request(id, "assign", payload); err != nil {
			return nil, fmt.Errorf("cluster: assign daemon %d (%s): %w", i, addrs[i], err)
		}
	}
	live := graph.NewWithNodes(n)
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		//detlint:allow meterseam — neighbor-table readback is control-plane RPC, not metered protocol traffic
		resp, err := coord.Request(id, "neighbors", nil)
		if err != nil {
			return nil, fmt.Errorf("cluster: neighbors of daemon %d: %w", i, err)
		}
		var tab neighborsPayload
		if err := json.Unmarshal(resp, &tab); err != nil {
			return nil, fmt.Errorf("cluster: neighbors of daemon %d: %w", i, err)
		}
		if tab.ID != id {
			return nil, fmt.Errorf("cluster: daemon at %s answers as %d, assigned %d", addrs[i], tab.ID, id)
		}
		want := planNeighbors(cfg.Plan, id, addrs)
		if len(tab.Neighbors) != len(want) {
			return nil, fmt.Errorf("cluster: daemon %d reports %d neighbors, plan has %d", i, len(tab.Neighbors), len(want))
		}
		for j, nb := range tab.Neighbors {
			if nb.ID != want[j].ID {
				return nil, fmt.Errorf("cluster: daemon %d neighbor %d is %d, plan says %d", i, j, nb.ID, want[j].ID)
			}
			if nb.ID > id { // each edge once, from its lower endpoint
				live.AddEdge(id, nb.ID)
			}
		}
	}
	logf("cluster of %d daemons wired and verified against the plan topology", n)

	// Two overlays on the identical assembled topology: the live one
	// hands every metered send to the coordinator transport, the
	// simulated oracle keeps everything in-process. Same seeds, same
	// adjacency order (the sim graph is a clone of the assembled one), so
	// benign estimates are bit-equal.
	liveNet := overlay.New(live, maxDeg, nil)
	liveNet.SetTransport(coord)
	simNet := overlay.New(live.Clone(), maxDeg, nil)
	liveIns, err := roster(cfg, liveNet)
	if err != nil {
		return nil, err
	}
	simIns, err := roster(cfg, simNet)
	if err != nil {
		return nil, err
	}

	horizon := cadence * float64(samples)
	mcfg := monitor.Config{Cadence: cadence}
	src := &pingSource{tr: coord, logf: logf}
	liveRes, err := monitor.RunLive(liveIns, liveNet, src, horizon, mcfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: live run: %w", err)
	}
	simRes, err := monitor.RunLive(simIns, simNet, nil, horizon, mcfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: simulated run: %w", err)
	}

	report := &Report{
		Nodes:     n,
		Tolerance: tolerance,
		Within:    true,
		Departed:  src.departed,
	}
	for k := range liveIns {
		f := Family{
			Name:     cfg.Estimators[k].Name,
			Live:     liveRes.Raw[k],
			Sim:      simRes.Raw[k],
			Messages: liveRes.Messages[k],
		}
		f.MaxDivergence = maxDivergence(f.Live, f.Sim)
		if !(f.MaxDivergence <= tolerance) {
			report.Within = false
		}
		report.Families = append(report.Families, f)
		logf("%s: live %v vs sim %v (max divergence %.3g, %d msgs)",
			f.Name, f.Live, f.Sim, f.MaxDivergence, f.Messages)
	}

	if cfg.Teardown {
		for i := 0; i < n; i++ {
			// Best effort: a daemon that already died is what Departed is for.
			//detlint:allow meterseam — teardown is control-plane RPC, not metered protocol traffic
			_, _ = coord.Request(graph.NodeID(i), "shutdown", nil)
		}
		logf("shutdown sent to %d daemons", n)
	}
	report.Transport = coord.Stats()
	return report, nil
}

// planNeighbors builds a node's neighbor table from the plan, sorted by
// ID (graph adjacency order is insertion order, not sorted).
func planNeighbors(plan *graph.Graph, id graph.NodeID, addrs []string) []NeighborInfo {
	nbs := append([]graph.NodeID(nil), plan.Neighbors(id)...)
	for i := 1; i < len(nbs); i++ {
		for j := i; j > 0 && nbs[j] < nbs[j-1]; j-- {
			nbs[j], nbs[j-1] = nbs[j-1], nbs[j]
		}
	}
	out := make([]NeighborInfo, len(nbs))
	for i, nb := range nbs {
		out[i] = NeighborInfo{ID: nb, Addr: addrs[nb]}
	}
	return out
}

// roster builds one monitor instance per family on net, each family on
// its fixed (Seed + StreamOffset) stream.
func roster(cfg Config, net *overlay.Network) ([]monitor.Instance, error) {
	out := make([]monitor.Instance, len(cfg.Estimators))
	for k, d := range cfg.Estimators {
		e, err := d.Build(net, xrand.New(cfg.Seed+d.StreamOffset), cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: estimator %q: %w", d.Name, err)
		}
		out[k] = monitor.Instance{Estimator: e}
	}
	return out, nil
}

// maxDivergence is max |live/sim - 1| over the samples where at least
// one side produced a value; a one-sided failure is +Inf, matching
// failures on both sides are skipped.
func maxDivergence(live, sim []float64) float64 {
	div := 0.0
	for i := range live {
		ln, sn := math.IsNaN(live[i]), math.IsNaN(sim[i])
		switch {
		case ln && sn:
			continue
		case ln != sn:
			return math.Inf(1)
		case sim[i] == 0:
			if live[i] != 0 {
				return math.Inf(1)
			}
		default:
			div = math.Max(div, math.Abs(live[i]/sim[i]-1))
		}
	}
	return div
}
