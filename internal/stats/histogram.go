package stats

import "sort"

// IntHistogram counts occurrences of small non-negative integers, such as
// node degrees. The zero value is ready to use.
type IntHistogram struct {
	counts []int
	total  int
}

// Add increments the count for v. Negative values panic.
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		panic("stats: IntHistogram.Add with negative value")
	}
	for v >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Count returns the number of occurrences of v (0 if never seen).
func (h *IntHistogram) Count(v int) int {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations.
func (h *IntHistogram) Total() int { return h.total }

// Max returns the largest value with a nonzero count (-1 if empty).
func (h *IntHistogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mean returns the mean observed value (0 if empty).
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// NonZero returns the (value, count) pairs with count > 0 in increasing
// value order — the format of the paper's log-log degree plot (Fig 7).
func (h *IntHistogram) NonZero() (values, counts []int) {
	for v, c := range h.counts {
		if c > 0 {
			values = append(values, v)
			counts = append(counts, c)
		}
	}
	return values, counts
}

// CCDF returns, for each distinct observed value v, the fraction of
// observations >= v. Useful for verifying power-law tails.
func (h *IntHistogram) CCDF() (values []int, frac []float64) {
	values, counts := h.NonZero()
	if h.total == 0 {
		return nil, nil
	}
	frac = make([]float64, len(values))
	cum := 0
	for i := len(values) - 1; i >= 0; i-- {
		cum += counts[i]
		frac[i] = float64(cum) / float64(h.total)
	}
	return values, frac
}

// Bucketed is a fixed-boundary histogram over float64 observations.
type Bucketed struct {
	bounds []float64 // sorted upper bounds; last bucket is unbounded
	counts []int
	total  int
}

// NewBucketed builds a histogram whose bucket i holds values <= bounds[i]
// (and greater than bounds[i-1]); one extra overflow bucket holds the rest.
// Bounds must be strictly increasing and nonempty.
func NewBucketed(bounds []float64) *Bucketed {
	if len(bounds) == 0 {
		panic("stats: NewBucketed with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: NewBucketed bounds not strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Bucketed{bounds: b, counts: make([]int, len(bounds)+1)}
}

// Add folds an observation into the histogram.
func (b *Bucketed) Add(x float64) {
	i := sort.SearchFloat64s(b.bounds, x)
	b.counts[i]++
	b.total++
}

// Counts returns a copy of the per-bucket counts, overflow bucket last.
func (b *Bucketed) Counts() []int {
	out := make([]int, len(b.counts))
	copy(out, b.counts)
	return out
}

// Total returns the number of observations.
func (b *Bucketed) Total() int { return b.total }
