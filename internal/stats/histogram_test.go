package stats

import (
	"testing"
	"testing/quick"

	"p2psize/internal/xrand"
)

func TestIntHistogramBasics(t *testing.T) {
	var h IntHistogram
	if h.Total() != 0 || h.Max() != -1 || h.Mean() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, v := range []int{1, 3, 3, 7} {
		h.Add(v)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(3) != 2 || h.Count(1) != 1 || h.Count(0) != 0 || h.Count(100) != 0 {
		t.Fatal("counts wrong")
	}
	if h.Max() != 7 {
		t.Fatalf("Max = %d", h.Max())
	}
	if !almostEqual(h.Mean(), 3.5, 1e-12) {
		t.Fatalf("Mean = %g", h.Mean())
	}
	if h.Count(-1) != 0 {
		t.Fatal("negative Count should be 0")
	}
}

func TestIntHistogramAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var h IntHistogram
	h.Add(-1)
}

func TestIntHistogramNonZero(t *testing.T) {
	var h IntHistogram
	h.Add(2)
	h.Add(2)
	h.Add(5)
	values, counts := h.NonZero()
	if len(values) != 2 || values[0] != 2 || values[1] != 5 {
		t.Fatalf("values = %v", values)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestIntHistogramCCDF(t *testing.T) {
	var h IntHistogram
	for _, v := range []int{1, 2, 2, 4} {
		h.Add(v)
	}
	values, frac := h.CCDF()
	// P(X>=1)=1, P(X>=2)=0.75, P(X>=4)=0.25
	want := map[int]float64{1: 1, 2: 0.75, 4: 0.25}
	for i, v := range values {
		if !almostEqual(frac[i], want[v], 1e-12) {
			t.Fatalf("CCDF(%d) = %g, want %g", v, frac[i], want[v])
		}
	}
	var empty IntHistogram
	if v, f := empty.CCDF(); v != nil || f != nil {
		t.Fatal("empty CCDF should be nil")
	}
}

func TestIntHistogramCCDFMonotone(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		var h IntHistogram
		for i := 0; i < int(nRaw)+1; i++ {
			h.Add(rng.Intn(20))
		}
		_, frac := h.CCDF()
		for i := 1; i < len(frac); i++ {
			if frac[i] > frac[i-1] {
				return false
			}
		}
		return len(frac) == 0 || almostEqual(frac[0], 1, 1e-12) == (h.Count(0) > 0 || frac[0] == 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketed(t *testing.T) {
	b := NewBucketed([]float64{1, 2, 5})
	for _, x := range []float64{0.5, 1, 1.5, 3, 10} {
		b.Add(x)
	}
	counts := b.Counts()
	// <=1: {0.5, 1}; <=2: {1.5}; <=5: {3}; overflow: {10}
	want := []int{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], want[i], counts)
		}
	}
	if b.Total() != 5 {
		t.Fatalf("Total = %d", b.Total())
	}
}

func TestBucketedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { NewBucketed(nil) },
		"nonmonotonic": func() { NewBucketed([]float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBucketedTotalInvariant(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		b := NewBucketed([]float64{0.25, 0.5, 0.75})
		n := int(nRaw)
		for i := 0; i < n; i++ {
			b.Add(rng.Float64())
		}
		sum := 0
		for _, c := range b.Counts() {
			sum += c
		}
		return sum == n && b.Total() == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
