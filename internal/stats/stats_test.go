package stats

import (
	"math"
	"testing"
	"testing/quick"

	"p2psize/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %g", r.Mean())
	}
	// Population variance of this classic set is 4; unbiased = 32/7.
	if !almostEqual(r.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %g", r.Variance())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", r.Min(), r.Max())
	}
	r.Reset()
	if r.N() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3)
	if r.Variance() != 0 || r.StdDev() != 0 {
		t.Fatal("variance of single observation should be 0")
	}
	if r.Min() != 3 || r.Max() != 3 {
		t.Fatal("min/max of single observation")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	check := func(seed uint64, split uint8) bool {
		rng := xrand.New(seed)
		n := 100
		k := int(split) % n
		var all, left, right Running
		for i := 0; i < n; i++ {
			x := rng.Norm(5, 3)
			all.Add(x)
			if i < k {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return left.N() == all.N() &&
			almostEqual(left.Mean(), all.Mean(), 1e-9) &&
			almostEqual(left.Variance(), all.Variance(), 1e-9) &&
			left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Merge(&b) // merge empty into non-empty
	if a.N() != 1 {
		t.Fatal("merge with empty changed N")
	}
	b.Merge(&a) // merge non-empty into empty
	if b.N() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

func TestWindowLastK(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Mean() != 0 {
		t.Fatal("fresh window not empty")
	}
	w.Add(1)
	w.Add(2)
	if w.Len() != 2 || !almostEqual(w.Mean(), 1.5, 1e-12) {
		t.Fatalf("partial window: len=%d mean=%g", w.Len(), w.Mean())
	}
	w.Add(3)
	w.Add(4) // evicts 1
	if w.Len() != 3 || !almostEqual(w.Mean(), 3, 1e-12) {
		t.Fatalf("full window: len=%d mean=%g", w.Len(), w.Mean())
	}
	vals := w.Values()
	if len(vals) != 3 || vals[0] != 2 || vals[1] != 3 || vals[2] != 4 {
		t.Fatalf("Values = %v", vals)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset did not clear window")
	}
}

func TestWindowLast10RunsSemantics(t *testing.T) {
	// The paper's last10runs heuristic: after 25 estimates, the smoothed
	// value is the mean of estimates 16..25.
	w := NewWindow(10)
	for i := 1; i <= 25; i++ {
		w.Add(float64(i))
	}
	if !almostEqual(w.Mean(), 20.5, 1e-12) {
		t.Fatalf("last10 mean = %g, want 20.5", w.Mean())
	}
}

func TestWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow(0) did not panic")
		}
	}()
	NewWindow(0)
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Quantile modified its input")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("Quantile single = %g", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); !almostEqual(got, 1.5, 1e-12) {
		t.Fatalf("interpolated median = %g", got)
	}
}

func TestMedianMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if Median(xs) != 3 {
		t.Fatalf("Median = %g", Median(xs))
	}
	if !almostEqual(Mean(xs), 22, 1e-12) {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/single degenerate cases")
	}
	if s := StdDev([]float64{2, 4}); !almostEqual(s, math.Sqrt2, 1e-12) {
		t.Fatalf("StdDev = %g", s)
	}
}

func TestRMSEAndPctError(t *testing.T) {
	est := []float64{110, 90}
	truth := []float64{100, 100}
	if got := RMSE(est, truth); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("RMSE = %g", got)
	}
	if got := MeanAbsPctError(est, truth); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("MeanAbsPctError = %g", got)
	}
}

func TestQualityPct(t *testing.T) {
	if got := QualityPct(95000, 100000); !almostEqual(got, 95, 1e-12) {
		t.Fatalf("QualityPct = %g", got)
	}
	if QualityPct(5, 0) != 0 {
		t.Fatal("QualityPct with zero truth should be 0")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Fatalf("fit = %g, %g", slope, intercept)
	}
	// Degenerate vertical data: zero denominator path.
	s, b := LinearFit([]float64{2, 2}, []float64{1, 3})
	if s != 0 || !almostEqual(b, 2, 1e-12) {
		t.Fatalf("vertical fit = %g, %g", s, b)
	}
}

func TestQuantileProperties(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		rng := xrand.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		q0, q5, q1 := Quantile(xs, 0), Quantile(xs, 0.5), Quantile(xs, 1)
		// Monotone in q, bounded by min/max.
		return q0 <= q5 && q5 <= q1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowMeanMatchesValues(t *testing.T) {
	check := func(seed uint64, kRaw, nRaw uint8) bool {
		k := int(kRaw)%10 + 1
		n := int(nRaw) % 50
		rng := xrand.New(seed)
		w := NewWindow(k)
		for i := 0; i < n; i++ {
			w.Add(rng.Float64())
		}
		return almostEqual(w.Mean(), Mean(w.Values()), 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
