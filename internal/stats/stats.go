// Package stats provides the statistical primitives the comparative study
// is built on: running moments, sliding windows (the paper's "last10runs"
// heuristic), exact quantiles, histograms and estimation-quality metrics.
//
// Everything here is deterministic and allocation-conscious; the hot paths
// (per-round quality tracking on million-node networks) avoid per-sample
// allocation entirely.
package stats

import (
	"math"
	"sort"
)

// Running accumulates count, mean, variance (Welford), min and max of a
// stream of float64 observations in O(1) memory.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 if fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another accumulator into r (parallel-friendly reduction).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	min, max := r.min, r.max
	if o.min < min {
		min = o.min
	}
	if o.max > max {
		max = o.max
	}
	*r = Running{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Window is a fixed-capacity sliding window over the most recent K
// observations. It implements the paper's lastKruns smoothing
// ("last10runs" with K = 10).
type Window struct {
	buf  []float64
	next int
	full bool
}

// NewWindow returns a window holding the last k observations.
// It panics if k <= 0.
func NewWindow(k int) *Window {
	if k <= 0 {
		panic("stats: NewWindow with k <= 0")
	}
	return &Window{buf: make([]float64, k)}
}

// Add pushes an observation, evicting the oldest once the window is full.
func (w *Window) Add(x float64) {
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Len returns the number of observations currently held.
func (w *Window) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Cap returns the window capacity K.
func (w *Window) Cap() int { return len(w.buf) }

// Mean returns the mean of the held observations (0 if empty).
func (w *Window) Mean() float64 {
	n := w.Len()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += w.buf[i]
	}
	return sum / float64(n)
}

// Values returns a copy of the held observations in insertion order
// (oldest first).
func (w *Window) Values() []float64 {
	n := w.Len()
	out := make([]float64, 0, n)
	if w.full {
		out = append(out, w.buf[w.next:]...)
	}
	out = append(out, w.buf[:w.next]...)
	return out
}

// Reset empties the window.
func (w *Window) Reset() {
	w.next = 0
	w.full = false
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice or
// out-of-range q. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0,1]")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the unbiased sample standard deviation of xs
// (0 if fewer than two elements).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// RMSE returns the root-mean-square error between the estimate series and
// the truth series; the two must have equal nonzero length.
func RMSE(estimates, truth []float64) float64 {
	if len(estimates) != len(truth) || len(estimates) == 0 {
		panic("stats: RMSE needs equal-length nonempty slices")
	}
	sum := 0.0
	for i := range estimates {
		d := estimates[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(estimates)))
}

// MeanAbsPctError returns the mean of |est/truth - 1|·100 over the series;
// truth entries must be nonzero.
func MeanAbsPctError(estimates, truth []float64) float64 {
	if len(estimates) != len(truth) || len(estimates) == 0 {
		panic("stats: MeanAbsPctError needs equal-length nonempty slices")
	}
	sum := 0.0
	for i := range estimates {
		sum += math.Abs(estimates[i]/truth[i]-1) * 100
	}
	return sum / float64(len(estimates))
}

// QualityPct expresses an estimate as a percentage of the true size, the
// normalization used on every static-setting figure of the paper
// ("the system size is normalized to 100").
func QualityPct(estimate, trueSize float64) float64 {
	if trueSize == 0 {
		return 0
	}
	return 100 * estimate / trueSize
}

// LinearFit returns the least-squares slope and intercept of y on x.
// It panics if the lengths differ or fewer than two points are given.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs >= 2 equal-length points")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}
