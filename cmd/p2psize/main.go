// Command p2psize runs decentralized size estimations on a simulated
// peer-to-peer overlay and reports accuracy and message overhead.
//
// Examples:
//
//	p2psize -nodes 100000 -algo sc -l 200 -runs 10
//	p2psize -nodes 100000 -algo hops -runs 10 -smooth
//	p2psize -nodes 100000 -algo agg -rounds 50
//	p2psize -nodes 100000 -algo all -runs 5
//
// With -trace the command switches from repeated static estimations to
// continuous monitoring: the overlay evolves under a churn trace
// (generated, or loaded from a .json/.csv file) and every selected
// algorithm is sampled each -cadence time units, reporting tracking
// error, staleness and message budget.
//
//	p2psize -nodes 100000 -algo all -trace weibull -horizon 1000
//	p2psize -nodes 50000 -algo sc -trace flashcrowd -policy window -restart-jump 0.5
//	p2psize -algo all -trace measured.csv -cadence 5
//
// -estimators selects algorithms from the estimator registry by name or
// alias ("sc,hops,agg", "all", "default") and overrides -algo; -cadence
// accepts a per-estimator spec in monitoring mode, a base tick plus
// name=value overrides, so cheap estimators can sample often while
// expensive ones sample rarely in the same run:
//
//	p2psize -estimators sc,poll,agg -trace weibull -cadence 5,agg=50
//	p2psize -estimators list
//
// -faults runs every selected algorithm under a degraded-network
// scenario: message-level faults (drop/delay/dup/lie) decorate each
// estimator with a deterministic fault injector, silent=/sybil=
// reshape the overlay before estimating, and -trace partition replays
// a partition-and-heal churn workload:
//
//	p2psize -nodes 100000 -estimators all -faults drop=0.05,delay=2x
//	p2psize -estimators sc,hops -trace partition -policy window
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"p2psize"
	"p2psize/internal/monitor"
	"p2psize/internal/parallel"
	"p2psize/internal/registry"
	"p2psize/internal/xrand"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 10000, "overlay size")
		topology = flag.String("topology", "heterogeneous", "heterogeneous | homogeneous | scalefree | ring")
		maxDeg   = flag.Int("maxdeg", 0, "degree cap (0 = paper default)")
		algo     = flag.String("algo", "all", "sc | hops | agg | tour | poll | all | everything")
		l        = flag.Int("l", 200, "Sample&Collide collision target")
		timer    = flag.Float64("T", 10, "Sample&Collide walk timer")
		mle      = flag.Bool("mle", false, "use the MLE refinement for Sample&Collide")
		rounds   = flag.Int("rounds", 50, "Aggregation rounds per estimation")
		minHops  = flag.Int("minhops", 5, "HopsSampling minHopsReporting")
		runs     = flag.Int("runs", 5, "estimations per algorithm")
		smooth   = flag.Bool("smooth", false, "apply the last10runs heuristic")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", 0, "worker pool size for the estimation runs (0 = all CPUs, 1 = sequential); output is identical at any setting")
		shards   = flag.Int("shards", 0, "shard count for the sweep inside each Aggregation round (0 = auto-size; part of the output, unlike -workers)")
		shuffle  = flag.String("shuffle", "global", "sweep-order randomization of the sharded rounds: \"global\" (frozen serial-shuffle draw order) or \"local\" (per-shard shuffles, no serial prefix); part of the output, like -shards")
		replay   = flag.String("replay", "perinstance", "monitor replay layout: \"perinstance\" (one trace replay and clone per estimator) or \"shared\" (observe-only estimators on one cadence share a clone and replay); results are bit-identical either way, unlike -shards")

		estSel = flag.String("estimators", "", "select algorithms from the estimator registry (comma-separated names/aliases, \"all\", \"default\", or \"list\" to print the catalog); overrides -algo")

		faults = flag.String("faults", "", "fault scenario every selected algorithm runs under, e.g. \"drop=0.05,delay=2x,lie=10@0.05\"; silent=/sybil= reshape the overlay, partition@lo-hi folds onto the -trace timeline")

		clusterN     = flag.Int("cluster", 0, "live-cluster mode: bootstrap this many in-process node daemons on 127.0.0.1 and run the estimators over real UDP sockets")
		clusterAddrs = flag.String("cluster-addrs", "", "live-cluster mode against pre-started p2pnode daemons: comma-separated addresses, or @FILE with one address per line")
		tolerance    = flag.Float64("tolerance", 0, "live-cluster accepted relative live-vs-simulated divergence (0 = 0.05)")
		teardown     = flag.Bool("teardown", false, "send a shutdown RPC to every daemon when the live-cluster run ends")

		traceSpec = flag.String("trace", "", "monitor under churn: weibull | lognormal | exponential | pareto | diurnal | flashcrowd | partition, or a trace file (.json/.csv, optionally .gz)")
		horizon   = flag.Float64("horizon", 1000, "trace duration in simulated time units (generated traces)")
		cadence   = flag.String("cadence", "10", "monitor sampling spec: a base tick and/or per-estimator name=value overrides, e.g. \"10\", \"5,agg=50\", \"hops=1,agg=10\"")
		policy    = flag.String("policy", "none", "monitor smoothing: none | window | ewma")
		window    = flag.Int("window", 10, "window smoothing length")
		alpha     = flag.Float64("alpha", 0.3, "EWMA smoothing weight")
		restart   = flag.Float64("restart-jump", 0, "restart smoothing when a raw estimate jumps by this relative fraction (0 = off)")
		saveTrace = flag.String("save-trace", "", "write the trace to this path (.json or .csv) before monitoring")
	)
	flag.Parse()

	if strings.EqualFold(strings.TrimSpace(*estSel), "list") {
		listEstimators()
		return
	}
	topo, err := parseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	if *shards < 0 || *shards > parallel.MaxConfigShards {
		fatal(fmt.Errorf("-shards %d out of range [0, %d] (0 = auto-size)", *shards, parallel.MaxConfigShards))
	}
	if _, err := parallel.ParseShuffleMode(*shuffle); err != nil {
		fatal(fmt.Errorf("-shuffle: %w", err))
	}
	if _, err := monitor.ParseReplayMode(*replay); err != nil {
		fatal(fmt.Errorf("-replay: %w", err))
	}
	// Split the CPU budget between the run-level fan-out and the sweep
	// inside each Aggregation round, mirroring the experiments layer:
	// repeated static runs saturate the pool themselves, so their epochs
	// sweep sequentially; the monitor runs a handful of concurrent
	// instances, so epochs shard on the leftover budget.
	aggWorkers := parallel.Resolve(*workers)
	if *traceSpec == "" && *runs > 1 {
		aggWorkers = 1
	} else if *traceSpec != "" {
		aggWorkers = max(1, aggWorkers/4)
	}
	opts := estOpts{
		l: *l, timer: *timer, mle: *mle, rounds: *rounds, shards: *shards,
		shuffle: *shuffle, aggWorkers: aggWorkers, minHops: *minHops, seed: *seed,
	}
	fopts, err := p2psize.ParseFaults(*faults)
	if err != nil {
		fatal(err)
	}
	clusterMode := *clusterN > 0 || *clusterAddrs != ""
	if err := validateModes(clusterMode, *traceSpec, fopts); err != nil {
		fatalUsage(err)
	}

	if clusterMode {
		if err := runCluster(clusterOpts{
			nodes: *clusterN, addrSpec: *clusterAddrs, topo: topo, maxDeg: *maxDeg,
			estSel: *estSel, runs: *runs, seed: *seed,
			tolerance: *tolerance, teardown: *teardown,
		}); err != nil {
			fatal(err)
		}
		return
	}

	if *traceSpec != "" {
		baseCadence, perCadence, err := registry.ParseCadenceSpec(*cadence, 10)
		if err != nil {
			fatal(err)
		}
		specs, err := selectEstimators(*estSel, *algo, opts, nil, true)
		if err != nil {
			fatal(err)
		}
		specs = withFaultSpecs(specs, fopts, *seed)
		if err := runMonitor(monitorOpts{
			traceSpec: *traceSpec, topo: topo, maxDeg: *maxDeg, nodes: *nodes,
			horizon: *horizon, cadence: baseCadence, cadences: perCadence,
			policy: *policy, window: *window, alpha: *alpha, restart: *restart,
			replay: *replay, saveTrace: *saveTrace, seed: *seed, workers: *workers,
			faults: fopts,
		}, specs); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("building %s overlay with %d nodes (seed %d)...\n", topo, *nodes, *seed)
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{
		Nodes: *nodes, Topology: topo, MaxDegree: *maxDeg, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("overlay ready: %d peers, average degree %.2f, connected=%v\n\n",
		net.Size(), net.AvgDegree(), net.IsConnected())

	// Error is judged against the honest population: silent peers still
	// count (alive, just unresponsive), sybils never do. The adversary
	// moves in before the estimators are built, so snapshot-based
	// families (id-density) see the degraded overlay — sybil records
	// registered, silent peers' records lingering.
	honest := float64(net.Size())
	if fopts.SilentFrac > 0 || fopts.SybilFrac > 0 {
		silenced, sybils, err := net.ApplyAdversary(fopts, *seed+4000)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("adversary in place: %d peers silenced, %d sybils joined (%.0f honest peers)\n\n",
			silenced, sybils, honest)
	}

	// The registry path hands the overlay to the factories so snapshot-
	// based families (id-density) can derive their state from it.
	specs, err := selectEstimators(*estSel, *algo, opts, net, false)
	if err != nil {
		fatal(err)
	}
	specs = withFaultSpecs(specs, fopts, *seed)

	for _, spec := range specs {
		net.ResetMessages()
		// Every run builds its own estimator from a run-indexed seed, so
		// the values are byte-identical at any -workers setting.
		vals, err := p2psize.RunParallel(spec.make, net, *runs, *workers)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.name, err))
		}
		name := spec.name
		if *smooth {
			vals = p2psize.SmoothLastK(vals, 10)
			name += "/last10runs"
		}
		reportRun(name, vals, honest, net)
	}
}

// withFaultSpecs decorates every spec's per-run factory with the
// scenario's fault injector when the scenario carries message-level
// faults. Run r of roster slot i draws its fates from the
// (seed+5000+i, r) stream, so neither runs nor families ever share a
// fault stream regardless of worker scheduling.
func withFaultSpecs(specs []estimatorSpec, f p2psize.FaultOptions, seed uint64) []estimatorSpec {
	if !f.MessageFaults() {
		return specs
	}
	fmt.Printf("fault scenario: %s\n\n", f)
	out := make([]estimatorSpec, len(specs))
	for i, s := range specs {
		inner := s.make
		base := seed + 5000 + uint64(i)
		out[i] = s
		out[i].make = func(run int) p2psize.Estimator {
			e, err := p2psize.ApplyFaults(inner(run), f, xrand.NewStream(base, uint64(run)).Uint64())
			if err != nil {
				fatal(err) // unreachable: the spec was validated at parse time
			}
			return e
		}
	}
	return out
}

type estOpts struct {
	l          int
	timer      float64
	mle        bool
	rounds     int
	shards     int
	shuffle    string
	aggWorkers int
	minHops    int
	seed       uint64
}

func parseTopology(s string) (p2psize.Topology, error) {
	switch strings.ToLower(s) {
	case "heterogeneous", "het":
		return p2psize.Heterogeneous, nil
	case "homogeneous", "hom":
		return p2psize.Homogeneous, nil
	case "scalefree", "scale-free", "ba":
		return p2psize.ScaleFree, nil
	case "ring":
		return p2psize.Ring, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

// estimatorSpec names an algorithm and builds one independent estimator
// per run index; run i's seed is drawn from the (base+offset, i) xrand
// stream, so runs never share a random stream regardless of worker
// scheduling and no (seed, run) pair collides with another invocation's
// (the additive base+offset+f(i) scheme would). family is the canonical
// registry name, which per-estimator cadence overrides key on.
type estimatorSpec struct {
	name   string
	family string
	make   func(run int) p2psize.Estimator
}

// listEstimators prints the registry catalog (-estimators list).
func listEstimators() {
	fmt.Printf("%-28s %-22s %-9s %-8s %-6s %s\n", "name (aliases)", "class", "dynamic", "monitor", "live", "summary")
	for _, in := range p2psize.Estimators() {
		name := in.Name
		if len(in.Aliases) > 0 {
			name += " (" + strings.Join(in.Aliases, ", ") + ")"
		}
		fmt.Printf("%-28s %-22s %-9v %-8v %-6v %s\n", name, in.Class, in.SupportsDynamic, in.SupportsMonitoring, in.SupportsTransport, in.Summary)
	}
	fmt.Printf("\ndefault roster: %s\n", strings.Join(p2psize.DefaultEstimators(), ", "))
}

// selectEstimators resolves the roster: the -estimators registry spec
// when given (net lets snapshot-based families build their state;
// monitoring mode rejects them instead), the legacy -algo selector
// otherwise.
func selectEstimators(sel, algo string, o estOpts, net *p2psize.Network, monitoring bool) ([]estimatorSpec, error) {
	if strings.TrimSpace(sel) == "" {
		return buildEstimators(algo, o)
	}
	ds, err := registry.Parse(sel)
	if err != nil {
		return nil, err
	}
	specs := make([]estimatorSpec, 0, len(ds))
	for _, d := range ds {
		if monitoring && !d.SupportsMonitoring {
			return nil, fmt.Errorf("estimator %q does not support continuous monitoring (snapshot-based); drop it from -estimators", d.Name)
		}
		cfg := p2psize.EstimatorConfig{
			SCTimer: o.timer, SCL: o.l, SCMLE: o.mle,
			// Random Tour cost is Θ(N) per tour: average 10 in one-shot
			// runs like -algo tour, but 3 per sample when monitoring.
			Tours:   10,
			MinHops: o.minHops,
			Rounds:  o.rounds, Shards: o.shards, Workers: o.aggWorkers,
			Shuffle: o.shuffle,
		}
		if monitoring {
			cfg.Tours = 3
		}
		// Validate the configuration once, eagerly — a bad option or a
		// family that needs an overlay must fail here, not mid-run. The
		// probe instance also supplies the display name: construction can
		// be expensive (id-density builds its ring from the whole
		// overlay), so it must not be repeated just for a label.
		probe, err := p2psize.NewEstimatorByName(d.Name, cfg, net)
		if err != nil {
			return nil, err
		}
		seedBase := o.seed + 1000 + d.StreamOffset
		name := d.Name
		mk := func(run int) p2psize.Estimator {
			c := cfg
			c.Seed = xrand.NewStream(seedBase, uint64(run)).Uint64()
			e, err := p2psize.NewEstimatorByName(name, c, net)
			if err != nil {
				fatal(err) // unreachable: validated above
			}
			return e
		}
		specs = append(specs, estimatorSpec{name: probe.Name(), family: d.Name, make: mk})
	}
	return specs, nil
}

func buildEstimators(algo string, o estOpts) ([]estimatorSpec, error) {
	runSeed := func(offset uint64) func(run int) uint64 {
		return func(run int) uint64 { return xrand.NewStream(o.seed+offset, uint64(run)).Uint64() }
	}
	scSeed, hopsSeed, aggSeed := runSeed(100), runSeed(200), runSeed(300)
	tourSeed, pollSeed := runSeed(400), runSeed(500)
	sc := estimatorSpec{family: "samplecollide", make: func(run int) p2psize.Estimator {
		return p2psize.NewSampleCollide(p2psize.SampleCollideOptions{
			T: o.timer, L: o.l, UseMLE: o.mle, Seed: scSeed(run),
		})
	}}
	hops := estimatorSpec{family: "hopssampling", make: func(run int) p2psize.Estimator {
		return p2psize.NewHopsSampling(p2psize.HopsSamplingOptions{
			MinHopsReporting: o.minHops, Seed: hopsSeed(run),
		})
	}}
	agg := estimatorSpec{family: "aggregation", make: func(run int) p2psize.Estimator {
		return p2psize.NewAggregation(p2psize.AggregationOptions{
			Rounds: o.rounds, Shards: o.shards, Workers: o.aggWorkers,
			Shuffle: o.shuffle, Seed: aggSeed(run),
		})
	}}
	tour := estimatorSpec{family: "randomtour", make: func(run int) p2psize.Estimator {
		return p2psize.NewRandomTour(p2psize.RandomTourOptions{
			Tours: 10, Seed: tourSeed(run),
		})
	}}
	poll := estimatorSpec{family: "polling", make: func(run int) p2psize.Estimator {
		return p2psize.NewPolling(p2psize.PollingOptions{
			Seed: pollSeed(run),
		})
	}}
	for _, s := range []*estimatorSpec{&sc, &hops, &agg, &tour, &poll} {
		s.name = s.make(0).Name()
	}
	switch strings.ToLower(algo) {
	case "sc", "samplecollide", "sample-collide":
		return []estimatorSpec{sc}, nil
	case "hops", "hopssampling":
		return []estimatorSpec{hops}, nil
	case "agg", "aggregation":
		return []estimatorSpec{agg}, nil
	case "tour", "randomtour":
		return []estimatorSpec{tour}, nil
	case "poll", "polling":
		return []estimatorSpec{poll}, nil
	case "all":
		return []estimatorSpec{sc, hops, agg}, nil
	case "everything":
		return []estimatorSpec{sc, hops, agg, tour, poll}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want sc, hops, agg, tour, poll, all or everything)", algo)
	}
}

func reportRun(name string, vals []float64, truth float64, net *p2psize.Network) {
	var sum, sumAbsErr float64
	for _, v := range vals {
		sum += v
		sumAbsErr += math.Abs(v/truth-1) * 100
	}
	mean := sum / float64(len(vals))
	fmt.Printf("%s\n", name)
	fmt.Printf("  estimates: %s\n", formatVals(vals))
	fmt.Printf("  mean %.0f (true %.0f), mean |error| %.1f%%\n",
		mean, truth, sumAbsErr/float64(len(vals)))
	fmt.Printf("  messages: %d total (%.0f per estimation)\n",
		net.Messages(), float64(net.Messages())/float64(len(vals)))
	byKind := net.MessagesByKind()
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("    %-14s %d\n", k, byKind[k])
	}
	fmt.Println()
}

func formatVals(vals []float64) string {
	parts := make([]string, 0, len(vals))
	for _, v := range vals {
		parts = append(parts, fmt.Sprintf("%.0f", v))
	}
	if len(parts) > 8 {
		parts = append(parts[:8], "...")
	}
	return strings.Join(parts, " ")
}

// validateModes is the single chokepoint for mutually exclusive mode
// combinations: every flag pairing the command cannot honor is rejected
// here, before any work starts, through one usage-error path.
func validateModes(clusterMode bool, traceSpec string, f p2psize.FaultOptions) error {
	switch {
	case clusterMode && traceSpec != "":
		return fmt.Errorf("-cluster and -trace are mutually exclusive: a live cluster's membership is owned by the daemons, not a replayed churn trace")
	case clusterMode && f.Enabled():
		return fmt.Errorf("-cluster runs the benign live protocol; fault scenarios are simulation-only (use -faults without -cluster, or cmd/figures -only robustness-*)")
	case traceSpec == "" && f.PartitionFrac > 0:
		return fmt.Errorf("-faults: a partition needs a timeline to split and heal across; add -trace (the partition@lo-hi window folds onto any trace workload)")
	case traceSpec != "" && f.SybilFrac > 0:
		return fmt.Errorf("-faults: sybil inflation conflicts with the trace's population accounting in monitoring mode; use cmd/figures -only robustness-adversary")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2psize:", err)
	os.Exit(1)
}

func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "p2psize:", err)
	fmt.Fprintln(os.Stderr, "run p2psize -h for usage")
	os.Exit(2)
}
