// Command p2psize runs decentralized size estimations on a simulated
// peer-to-peer overlay and reports accuracy and message overhead.
//
// Examples:
//
//	p2psize -nodes 100000 -algo sc -l 200 -runs 10
//	p2psize -nodes 100000 -algo hops -runs 10 -smooth
//	p2psize -nodes 100000 -algo agg -rounds 50
//	p2psize -nodes 100000 -algo all -runs 5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"p2psize"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 10000, "overlay size")
		topology = flag.String("topology", "heterogeneous", "heterogeneous | homogeneous | scalefree | ring")
		maxDeg   = flag.Int("maxdeg", 0, "degree cap (0 = paper default)")
		algo     = flag.String("algo", "all", "sc | hops | agg | tour | poll | all | everything")
		l        = flag.Int("l", 200, "Sample&Collide collision target")
		timer    = flag.Float64("T", 10, "Sample&Collide walk timer")
		mle      = flag.Bool("mle", false, "use the MLE refinement for Sample&Collide")
		rounds   = flag.Int("rounds", 50, "Aggregation rounds per estimation")
		minHops  = flag.Int("minhops", 5, "HopsSampling minHopsReporting")
		runs     = flag.Int("runs", 5, "estimations per algorithm")
		smooth   = flag.Bool("smooth", false, "apply the last10runs heuristic")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	topo, err := parseTopology(*topology)
	if err != nil {
		fatal(err)
	}
	estimators, err := buildEstimators(*algo, estOpts{
		l: *l, timer: *timer, mle: *mle, rounds: *rounds, minHops: *minHops, seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("building %s overlay with %d nodes (seed %d)...\n", topo, *nodes, *seed)
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{
		Nodes: *nodes, Topology: topo, MaxDegree: *maxDeg, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("overlay ready: %d peers, average degree %.2f, connected=%v\n\n",
		net.Size(), net.AvgDegree(), net.IsConnected())

	for _, est := range estimators {
		if *smooth {
			est = p2psize.Smoothed(est, 10)
		}
		net.ResetMessages()
		vals, err := p2psize.RunRepeated(est, net, *runs)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", est.Name(), err))
		}
		reportRun(est.Name(), vals, net)
	}
}

type estOpts struct {
	l       int
	timer   float64
	mle     bool
	rounds  int
	minHops int
	seed    uint64
}

func parseTopology(s string) (p2psize.Topology, error) {
	switch strings.ToLower(s) {
	case "heterogeneous", "het":
		return p2psize.Heterogeneous, nil
	case "homogeneous", "hom":
		return p2psize.Homogeneous, nil
	case "scalefree", "scale-free", "ba":
		return p2psize.ScaleFree, nil
	case "ring":
		return p2psize.Ring, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

func buildEstimators(algo string, o estOpts) ([]p2psize.Estimator, error) {
	sc := p2psize.NewSampleCollide(p2psize.SampleCollideOptions{
		T: o.timer, L: o.l, UseMLE: o.mle, Seed: o.seed + 100,
	})
	hops := p2psize.NewHopsSampling(p2psize.HopsSamplingOptions{
		MinHopsReporting: o.minHops, Seed: o.seed + 200,
	})
	agg := p2psize.NewAggregation(p2psize.AggregationOptions{
		Rounds: o.rounds, Seed: o.seed + 300,
	})
	tour := p2psize.NewRandomTour(p2psize.RandomTourOptions{
		Tours: 10, Seed: o.seed + 400,
	})
	poll := p2psize.NewPolling(p2psize.PollingOptions{
		Seed: o.seed + 500,
	})
	switch strings.ToLower(algo) {
	case "sc", "samplecollide", "sample-collide":
		return []p2psize.Estimator{sc}, nil
	case "hops", "hopssampling":
		return []p2psize.Estimator{hops}, nil
	case "agg", "aggregation":
		return []p2psize.Estimator{agg}, nil
	case "tour", "randomtour":
		return []p2psize.Estimator{tour}, nil
	case "poll", "polling":
		return []p2psize.Estimator{poll}, nil
	case "all":
		return []p2psize.Estimator{sc, hops, agg}, nil
	case "everything":
		return []p2psize.Estimator{sc, hops, agg, tour, poll}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want sc, hops, agg, tour, poll, all or everything)", algo)
	}
}

func reportRun(name string, vals []float64, net *p2psize.Network) {
	truth := float64(net.Size())
	var sum, sumAbsErr float64
	for _, v := range vals {
		sum += v
		sumAbsErr += math.Abs(v/truth-1) * 100
	}
	mean := sum / float64(len(vals))
	fmt.Printf("%s\n", name)
	fmt.Printf("  estimates: %s\n", formatVals(vals))
	fmt.Printf("  mean %.0f (true %d), mean |error| %.1f%%\n",
		mean, net.Size(), sumAbsErr/float64(len(vals)))
	fmt.Printf("  messages: %d total (%.0f per estimation)\n",
		net.Messages(), float64(net.Messages())/float64(len(vals)))
	byKind := net.MessagesByKind()
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("    %-14s %d\n", k, byKind[k])
	}
	fmt.Println()
}

func formatVals(vals []float64) string {
	parts := make([]string, 0, len(vals))
	for _, v := range vals {
		parts = append(parts, fmt.Sprintf("%.0f", v))
	}
	if len(parts) > 8 {
		parts = append(parts[:8], "...")
	}
	return strings.Join(parts, " ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "p2psize:", err)
	os.Exit(1)
}
