package main

// Live-cluster mode (-cluster / -cluster-addrs): run the estimators over
// real UDP sockets against node daemons, cross-validating every live
// estimate with a simulated run on the identical topology. A run whose
// divergence exceeds the tolerance exits nonzero — the CI smoke job's
// assertion.

import (
	"fmt"
	"os"
	"strings"

	"p2psize"
)

type clusterOpts struct {
	nodes     int
	addrSpec  string
	topo      p2psize.Topology
	maxDeg    int
	estSel    string
	runs      int
	seed      uint64
	tolerance float64
	teardown  bool
}

// parseAddrSpec resolves -cluster-addrs: a comma-separated address list,
// or @FILE naming a file with one address per line (how scripts collect
// the daemons' ephemeral ports).
func parseAddrSpec(spec string) ([]string, error) {
	if spec == "" {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(spec, "@"); ok {
		data, err := os.ReadFile(rest)
		if err != nil {
			return nil, fmt.Errorf("-cluster-addrs: %w", err)
		}
		spec = strings.ReplaceAll(string(data), "\n", ",")
	}
	var addrs []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("-cluster-addrs: no addresses in %q", spec)
	}
	return addrs, nil
}

func runCluster(o clusterOpts) error {
	addrs, err := parseAddrSpec(o.addrSpec)
	if err != nil {
		return err
	}
	if len(addrs) > 0 && o.nodes > 0 && o.nodes != len(addrs) {
		return fmt.Errorf("-cluster %d contradicts the %d addresses in -cluster-addrs; drop one flag", o.nodes, len(addrs))
	}
	rep, err := p2psize.RunCluster(p2psize.ClusterOptions{
		Nodes:      o.nodes,
		Addrs:      addrs,
		Topology:   o.topo,
		MaxDegree:  o.maxDeg,
		Seed:       o.seed,
		Estimators: estimatorNames(o.estSel),
		Samples:    o.runs,
		Tolerance:  o.tolerance,
		Teardown:   o.teardown,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nlive cluster of %d daemons, tolerance %.2g:\n", rep.Nodes, rep.Tolerance)
	fmt.Printf("%-18s %14s %14s %12s %10s\n", "family", "live mean", "sim mean", "divergence", "messages")
	for _, f := range rep.Families {
		fmt.Printf("%-18s %14.1f %14.1f %12.3g %10d\n",
			f.Name, mean(f.Live), mean(f.Sim), f.MaxDivergence, f.Messages)
	}
	if rep.Departed > 0 {
		fmt.Printf("%d daemons departed during the run\n", rep.Departed)
	}
	if !rep.WithinTolerance {
		return fmt.Errorf("live estimates diverged from the simulated run beyond tolerance %.2g", rep.Tolerance)
	}
	fmt.Println("live and simulated runs agree within tolerance")
	return nil
}

// estimatorNames turns the -estimators spec into a name list for the
// public cluster API ("", "default" and "all" pass through as roster
// selectors, which silently keep only transport-capable families).
func estimatorNames(sel string) []string {
	sel = strings.TrimSpace(sel)
	switch strings.ToLower(sel) {
	case "", "default":
		return nil
	case "all":
		var names []string
		for _, in := range p2psize.Estimators() {
			if in.SupportsTransport {
				names = append(names, in.Name)
			}
		}
		return names
	}
	var names []string
	for _, f := range strings.Split(sel, ",") {
		if f = strings.TrimSpace(f); f != "" {
			names = append(names, f)
		}
	}
	return names
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
