package main

// Continuous-monitoring mode (-trace): build or load a churn trace,
// replay it against the overlay, and sample every selected algorithm on
// a cadence, reporting per-estimator tracking metrics.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"p2psize"
	"p2psize/internal/parallel"
)

type monitorOpts struct {
	traceSpec string
	topo      p2psize.Topology
	maxDeg    int
	nodes     int
	horizon   float64
	cadence   float64
	// cadences holds per-estimator overrides keyed by canonical
	// registry family (from the -cadence name=value spec); families
	// not listed sample every cadence time units.
	cadences map[string]float64
	policy   string
	window   int
	alpha    float64
	restart  float64
	// replay is the -replay layout ("perinstance"/"shared"); validated
	// in main, bit-identical results either way.
	replay    string
	saveTrace string
	seed      uint64
	workers   int
	// faults is the -faults scenario; message-level faults are already
	// baked into the specs. Applied here: overlay surgery (silent peers)
	// and partition@lo-hi clauses, which fold onto the trace timeline
	// whatever the workload. Sybil inflation is rejected upstream (it
	// conflicts with the trace's population accounting).
	faults p2psize.FaultOptions
}

// buildTrace generates a named synthetic workload or loads a trace file
// (.json/.csv). Generated workloads derive everything else from the
// option set; the initial population of a loaded trace overrides -nodes.
func buildTrace(o monitorOpts) (*p2psize.Trace, error) {
	if ext := filepath.Ext(o.traceSpec); strings.EqualFold(ext, ".json") || strings.EqualFold(ext, ".csv") {
		return p2psize.ReadTraceFile(o.traceSpec)
	}
	base := p2psize.TraceOptions{
		Nodes:   o.nodes,
		Horizon: o.horizon,
		Seed:    o.seed + 1000,
		Name:    o.traceSpec,
		// Per-session streams on the worker pool: ~3x faster on large
		// traces, byte-identical at every positive worker count.
		Workers: parallel.Resolve(o.workers),
	}
	switch strings.ToLower(o.traceSpec) {
	case "exponential", "exp":
		base.Sessions = p2psize.ExponentialSessions
	case "weibull":
		base.Sessions = p2psize.WeibullSessions
	case "lognormal":
		base.Sessions = p2psize.LogNormalSessions
	case "pareto":
		base.Sessions = p2psize.ParetoSessions
	case "diurnal":
		base.Sessions = p2psize.LogNormalSessions
		base.MeanSession = o.horizon / 2
		base.DiurnalAmplitude = 0.8
	case "flashcrowd":
		base.Sessions = p2psize.ExponentialSessions
		base.MeanSession = o.horizon / 2
		tr, err := p2psize.GenerateTrace(base)
		if err != nil {
			return nil, err
		}
		if err := tr.AddFlashCrowd(0.3*o.horizon, o.nodes/2, 0, o.seed+1001); err != nil {
			return nil, err
		}
		if err := tr.AddMassFailure(0.7*o.horizon, 0.25, o.seed+1002); err != nil {
			return nil, err
		}
		return tr, nil
	case "partition":
		base.Sessions = p2psize.ExponentialSessions
		base.MeanSession = o.horizon / 2
		tr, err := p2psize.GenerateTrace(base)
		if err != nil {
			return nil, err
		}
		// Canned window: half the peers split off the monitored component
		// for the middle fifth of the horizon, then the survivors rejoin.
		// A -faults partition@lo-hi clause overrides it (folded onto the
		// trace by runMonitor, like on any other workload).
		if o.faults.PartitionFrac > 0 {
			return tr, nil
		}
		if err := tr.AddPartitionHeal(0.4*o.horizon, 0.6*o.horizon, 0.5, o.seed+1001); err != nil {
			return nil, err
		}
		return tr, nil
	default:
		return nil, fmt.Errorf("unknown trace %q (want weibull, lognormal, exponential, pareto, diurnal, flashcrowd, partition or a .json/.csv file)", o.traceSpec)
	}
	return p2psize.GenerateTrace(base)
}

func parsePolicy(s string) (p2psize.SmoothingPolicy, error) {
	switch strings.ToLower(s) {
	case "none", "oneshot":
		return p2psize.NoSmoothing, nil
	case "window", "lastk":
		return p2psize.WindowSmoothing, nil
	case "ewma":
		return p2psize.EWMASmoothing, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want none, window or ewma)", s)
	}
}

func runMonitor(o monitorOpts, specs []estimatorSpec) error {
	tr, err := buildTrace(o)
	if err != nil {
		return err
	}
	// A partition fault clause composes onto ANY trace workload (generated
	// or loaded): the spec's lo-hi window is relative to the trace's own
	// horizon. Folded before -save-trace so the written trace is the one
	// that actually ran.
	if f := o.faults; f.PartitionFrac > 0 {
		h := tr.Horizon()
		if err := tr.AddPartitionHeal(f.PartitionLo*h, f.PartitionHi*h, f.PartitionFrac, o.seed+1004); err != nil {
			return err
		}
		fmt.Printf("partition folded onto trace %q: %.0f%% of peers split at t=%g, heal at t=%g\n",
			tr.Name(), f.PartitionFrac*100, f.PartitionLo*h, f.PartitionHi*h)
	}
	pol, err := parsePolicy(o.policy)
	if err != nil {
		return err
	}
	if o.restart > 0 && pol == p2psize.NoSmoothing {
		return fmt.Errorf("-restart-jump needs smoothing state to discard; use -policy window or -policy ewma")
	}
	if o.saveTrace != "" {
		f, err := os.Create(o.saveTrace)
		if err != nil {
			return err
		}
		if strings.HasSuffix(o.saveTrace, ".csv") {
			err = tr.WriteCSV(f)
		} else {
			err = tr.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", o.saveTrace)
	}

	n := tr.InitialNodes()
	fmt.Printf("building %s overlay with %d nodes (seed %d)...\n", o.topo, n, o.seed)
	net, err := p2psize.NewNetwork(p2psize.NetworkOptions{
		Nodes: n, Topology: o.topo, MaxDegree: o.maxDeg, Seed: o.seed,
	})
	if err != nil {
		return err
	}
	if o.faults.SilentFrac > 0 {
		silenced, _, err := net.ApplyAdversary(o.faults, o.seed+4000)
		if err != nil {
			return err
		}
		fmt.Printf("adversary in place: %d peers silenced\n", silenced)
	}
	fmt.Printf("trace %q: %d joins, %d leaves over horizon %g; sampling every %g time units\n\n",
		tr.Name(), tr.Joins(), tr.Leaves(), tr.Horizon(), o.cadence)

	ests := make([]p2psize.Estimator, len(specs))
	var cadences []float64
	for k, spec := range specs {
		ests[k] = spec.make(k)
		if c, ok := o.cadences[spec.family]; ok {
			if cadences == nil {
				cadences = make([]float64, len(specs))
			}
			cadences[k] = c
		}
	}
	// Sorted, so the error is deterministic regardless of map order —
	// the same shape as the experiments layer's orphan check.
	var orphans []string
	for family := range o.cadences {
		known := false
		for _, spec := range specs {
			if spec.family == family {
				known = true
				break
			}
		}
		if !known {
			orphans = append(orphans, family)
		}
	}
	if len(orphans) > 0 {
		sort.Strings(orphans)
		return fmt.Errorf("-cadence names %v, not in the monitored roster", orphans)
	}
	res, err := p2psize.RunMonitor(net, tr, ests, p2psize.MonitorOptions{
		Cadence:     o.cadence,
		Cadences:    cadences,
		Policy:      pol,
		Window:      o.window,
		Alpha:       o.alpha,
		RestartJump: o.restart,
		ReplaySeed:  o.seed + 1003,
		Replay:      o.replay,
		Workers:     o.workers,
	})
	if err != nil {
		return err
	}

	times := res.Times()
	truth := res.TrueSizes()
	fmt.Printf("%8s %10s", "time", "true")
	for _, name := range res.Names() {
		fmt.Printf(" %22s", truncate(name, 22))
	}
	fmt.Println()
	step := max(1, len(times)/20) // at most ~20 rows
	for i := 0; i < len(times); i += step {
		fmt.Printf("%8.0f %10.0f", times[i], truth[i])
		for k := range res.Names() {
			fmt.Printf(" %22.0f", res.Estimates(k)[i])
		}
		fmt.Println()
	}
	fmt.Printf("\n%s", res)
	// The monitor replays the trace on clones of net — one per replay
	// group — so net itself still holds the initial topology, only its
	// meter accumulated.
	fmt.Printf("\ntotal message cost: %d across %d estimators (%d replay groups)\n",
		net.Messages(), len(ests), res.Groups())
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
