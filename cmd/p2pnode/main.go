// Command p2pnode runs one cluster daemon: a UDP endpoint that holds an
// overlay membership assigned by a p2psize coordinator and absorbs the
// estimator families' protocol traffic.
//
// Usage:
//
//	p2pnode [-addr 127.0.0.1:0] [-addr-file PATH]
//
// The bound address is printed on stdout (and written to -addr-file when
// given) so scripts can collect ephemeral ports. The daemon exits on
// SIGINT/SIGTERM or on the coordinator's shutdown RPC.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"p2psize/internal/cluster"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "UDP address to listen on (port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file for script pickup")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "p2pnode: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}

	node, err := cluster.NewNode(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "p2pnode: %v\n", err)
		os.Exit(1)
	}
	defer node.Close()

	fmt.Printf("p2pnode listening on %s\n", node.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(node.Addr()+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "p2pnode: write -addr-file: %v\n", err)
			os.Exit(1)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-node.Done():
		fmt.Printf("p2pnode %d: shutdown RPC received\n", node.ID())
	case s := <-sig:
		fmt.Printf("p2pnode %d: %v\n", node.ID(), s)
	}
	fmt.Printf("p2pnode %d: absorbed %d protocol messages\n", node.ID(), node.Received())
}
