// Command detlint runs the repo's determinism & metering analyzers
// (internal/lint) over a set of package patterns, multichecker-style:
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -only maprange,walltime ./internal/...
//	go run ./cmd/detlint -list
//
// Findings print as file:line:col: message [analyzer]. Exit status is
// 0 when clean, 1 when findings survive the allowlists and
// //detlint:allow directives, 2 on usage or load errors. Test files
// are not analyzed (the invariants guard shipped code; tests read
// clocks and build colliding descriptors on purpose).
package main

import (
	"flag"
	"fmt"
	"os"

	"p2psize/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-only a,b] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	}

	loader := lint.NewLoader("")
	module, err := loader.Module()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.NewSuite(module, analyzers).Run(pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
