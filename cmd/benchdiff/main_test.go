package main

import (
	"strings"
	"testing"

	"p2psize/internal/experiments"
)

func report(total float64, entries ...experiments.ExperimentReport) *experiments.SuiteReport {
	return &experiments.SuiteReport{
		Schema:      experiments.ReportSchema,
		TotalWallMS: total,
		Experiments: entries,
	}
}

func entry(id string, wallMS float64, checksum string) experiments.ExperimentReport {
	return experiments.ExperimentReport{
		ID:     id,
		WallMS: wallMS,
		Series: []experiments.SeriesSummary{{Name: "s", Points: 3, Checksum: checksum}},
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	oldRep := report(1000, entry("fig01", 400, "aa"), entry("fig05", 600, "bb"))
	newRep := report(1100, entry("fig01", 560, "aa"), entry("fig05", 540, "bb"))
	out, regressions := diff(oldRep, newRep, 0.20, 50)
	if len(regressions) != 1 || !strings.HasPrefix(regressions[0], "fig01:") {
		t.Fatalf("regressions = %v, want one on fig01", regressions)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("report lacks REGRESSION marker:\n%s", out)
	}
}

func TestDiffNoiseFloor(t *testing.T) {
	// A 10x slowdown on a 5ms experiment must not gate.
	oldRep := report(100, entry("fig01", 5, "aa"))
	newRep := report(110, entry("fig01", 50, "aa"))
	_, regressions := diff(oldRep, newRep, 0.20, 50)
	if len(regressions) != 0 {
		t.Fatalf("noise-floor experiment gated: %v", regressions)
	}
}

func TestDiffTotalRegression(t *testing.T) {
	// Each experiment sits below the per-experiment noise floor, so none
	// gates alone — but together they regressed 50%, which the total
	// (summed over matched experiments) must catch.
	oldRep := report(120, entry("fig01", 40, "aa"), entry("fig02", 40, "bb"), entry("fig03", 40, "cc"))
	newRep := report(180, entry("fig01", 60, "aa"), entry("fig02", 60, "bb"), entry("fig03", 60, "cc"))
	_, regressions := diff(oldRep, newRep, 0.20, 50)
	if len(regressions) != 1 || !strings.HasPrefix(regressions[0], "TOTAL:") {
		t.Fatalf("regressions = %v, want one on TOTAL", regressions)
	}
}

func TestDiffTotalIgnoresAddedExperiments(t *testing.T) {
	// A PR adding a heavy new experiment must not trip the TOTAL gate:
	// the total compares only experiments present in both reports.
	oldRep := report(500, entry("fig01", 500, "aa"))
	newRep := report(2000, entry("fig01", 510, "aa"), entry("trace-weibull", 1490, "bb"))
	_, regressions := diff(oldRep, newRep, 0.20, 50)
	if len(regressions) != 0 {
		t.Fatalf("added experiment tripped the gate: %v", regressions)
	}
}

func TestCheckRequired(t *testing.T) {
	errored := entry("perf-engine-local", 100, "bb")
	errored.Error = "boom"
	rep := report(300, entry("perf-engine-global", 200, "aa"), errored)
	if missing := checkRequired(rep, ""); missing != nil {
		t.Fatalf("empty spec flagged: %v", missing)
	}
	if missing := checkRequired(rep, "perf-engine-global"); missing != nil {
		t.Fatalf("present experiment flagged: %v", missing)
	}
	missing := checkRequired(rep, " perf-engine-global , perf-engine-local,perf-agg-seq,")
	if len(missing) != 2 {
		t.Fatalf("missing = %v, want errored + absent", missing)
	}
	if !strings.Contains(missing[0], "errored: boom") || !strings.Contains(missing[1], "not in report") {
		t.Fatalf("missing = %v", missing)
	}
}

func TestDiffAddedRemovedAndChecksums(t *testing.T) {
	oldRep := report(1000, entry("fig01", 500, "aa"), entry("gone", 100, "cc"))
	newRep := report(1000, entry("fig01", 500, "CHANGED"), entry("fresh", 100, "dd"))
	out, regressions := diff(oldRep, newRep, 0.20, 50)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", regressions)
	}
	for _, want := range []string{"new experiment", "removed", "output changed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
}
