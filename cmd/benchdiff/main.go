// Command benchdiff compares two suite reports (BENCH_results.json /
// REPORT.json, schema p2psize-suite-report/v1) and fails when wall times
// regressed: per experiment beyond -threshold, or in total. CI runs it
// in the bench-smoke job against the artifact of the previous successful
// run, gating pull requests on the perf trajectory.
//
// Wall times on shared runners are noisy, so experiments faster than
// -min-ms in the baseline are reported but never gate, and the threshold
// is generous by default (20%). Checksum changes are reported as
// informational — they flag output changes, not regressions (any change
// to an experiment's data legitimately moves its checksums).
//
// -require lists experiment ids that must be present (and error-free) in
// the NEW report; a missing or errored required id fails the diff even
// when no wall time regressed. CI requires the perf-engine-{global,local}
// pair (the shuffle-mode Amdahl comparison) and the
// perf-monitor-{perinstance,shared} pair (the replay-sharing wall-time
// and alloc_bytes comparison) so neither can silently drop out of
// BENCH_results.json.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-min-ms 50] [-require id,id] old.json new.json
//
// Exit status: 0 no regression, 1 regression or missing required
// experiment, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"p2psize/internal/experiments"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.20, "fail when an experiment's wall time grows by more than this fraction")
		minMS     = flag.Float64("min-ms", 50, "ignore experiments faster than this many ms in the baseline (noise floor)")
		require   = flag.String("require", "", "comma-separated experiment ids that must be present and error-free in the new report")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [flags] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	report, regressions := diff(oldRep, newRep, *threshold, *minMS)
	fmt.Print(report)
	if missing := checkRequired(newRep, *require); len(missing) > 0 {
		fmt.Printf("\nFAIL: required experiment(s) missing or errored in %s:\n", flag.Arg(1))
		for _, m := range missing {
			fmt.Printf("  %s\n", m)
		}
		os.Exit(1)
	}
	if len(regressions) > 0 {
		fmt.Printf("\nFAIL: %d wall-time regression(s) beyond %.0f%%:\n", len(regressions), *threshold*100)
		for _, r := range regressions {
			fmt.Printf("  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Println("\nOK: no wall-time regressions")
}

func load(path string) (*experiments.SuiteReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r experiments.SuiteReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != experiments.ReportSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, experiments.ReportSchema)
	}
	return &r, nil
}

// diff renders a per-experiment comparison and returns the list of
// gating regressions. Experiments are matched by id (both reports
// iterated in id order); additions and removals are informational.
func diff(oldRep, newRep *experiments.SuiteReport, threshold, minMS float64) (string, []string) {
	oldBy := byID(oldRep)
	newBy := byID(newRep)
	var b strings.Builder
	var regressions []string
	fmt.Fprintf(&b, "%-18s %10s %10s %8s   %s\n", "experiment", "old ms", "new ms", "delta", "note")
	for _, e := range newRep.Sorted() {
		o, ok := oldBy[e.ID]
		if !ok {
			fmt.Fprintf(&b, "%-18s %10s %10.0f %8s   new experiment\n", e.ID, "-", e.WallMS, "-")
			continue
		}
		var notes []string
		if o.Error != "" || e.Error != "" {
			notes = append(notes, "errored")
		}
		if checksumsDiffer(o, e) {
			notes = append(notes, "output changed")
		}
		delta := 0.0
		if o.WallMS > 0 {
			delta = e.WallMS/o.WallMS - 1
		}
		gates := o.WallMS >= minMS
		if gates && delta > threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0fms -> %.0fms (%+.0f%%)", e.ID, o.WallMS, e.WallMS, delta*100))
			notes = append(notes, "REGRESSION")
		} else if !gates {
			notes = append(notes, "below noise floor")
		}
		fmt.Fprintf(&b, "%-18s %10.0f %10.0f %+7.0f%%   %s\n",
			e.ID, o.WallMS, e.WallMS, delta*100, strings.Join(notes, ", "))
	}
	for _, o := range oldRep.Sorted() {
		if _, ok := newBy[o.ID]; !ok {
			fmt.Fprintf(&b, "%-18s %10.0f %10s %8s   removed\n", o.ID, o.WallMS, "-", "-")
		}
	}
	// The total gates only over experiments present in both reports —
	// otherwise every PR that adds or removes a benchmark would trip it.
	// Summation follows id order: float addition is order-dependent, and
	// map iteration would make a threshold-straddling delta flip between
	// runs.
	var oldTotal, newTotal float64
	for _, o := range oldRep.Sorted() {
		if e, ok := newBy[o.ID]; ok {
			oldTotal += o.WallMS
			newTotal += e.WallMS
		}
	}
	totalDelta := 0.0
	if oldTotal > 0 {
		totalDelta = newTotal/oldTotal - 1
	}
	fmt.Fprintf(&b, "%-18s %10.0f %10.0f %+7.0f%%   experiments in both reports\n",
		"TOTAL", oldTotal, newTotal, totalDelta*100)
	if oldTotal >= minMS && totalDelta > threshold {
		regressions = append(regressions,
			fmt.Sprintf("TOTAL: %.0fms -> %.0fms (%+.0f%%)",
				oldTotal, newTotal, totalDelta*100))
	}
	return b.String(), regressions
}

// checkRequired verifies every id in the comma-separated spec exists in
// the new report and carries no error; violations gate like regressions.
func checkRequired(r *experiments.SuiteReport, spec string) []string {
	if spec == "" {
		return nil
	}
	have := byID(r)
	var missing []string
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e, ok := have[id]
		switch {
		case !ok:
			missing = append(missing, id+": not in report")
		case e.Error != "":
			missing = append(missing, id+": errored: "+e.Error)
		}
	}
	return missing
}

func byID(r *experiments.SuiteReport) map[string]experiments.ExperimentReport {
	out := make(map[string]experiments.ExperimentReport, len(r.Experiments))
	for _, e := range r.Experiments {
		out[e.ID] = e
	}
	return out
}

func checksumsDiffer(a, b experiments.ExperimentReport) bool {
	if len(a.Series) != len(b.Series) {
		return true
	}
	for i := range a.Series {
		if a.Series[i] != b.Series[i] {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
