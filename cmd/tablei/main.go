// Command tablei reproduces the paper's Table I: per-algorithm accuracy
// and message overhead for one estimation on the (scaled) 100,000-node
// heterogeneous overlay, printed as text and markdown.
package main

import (
	"flag"
	"fmt"
	"os"

	"p2psize/internal/experiments"
)

func main() {
	var (
		scale    = flag.Int("scale", 10, "divide the paper's node counts by this factor")
		full     = flag.Bool("full", false, "run at the paper's full scale")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		runs     = flag.Int("runs", 0, "estimations per row (0 = default)")
		markdown = flag.Bool("markdown", false, "emit markdown instead of aligned text")
	)
	flag.Parse()

	params := experiments.Scaled(*scale)
	if *full {
		params = experiments.Defaults()
	}
	params.Seed = *seed
	if *runs > 0 {
		params.TableRuns = *runs
	}

	tbl, _, err := experiments.TableI(params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablei:", err)
		os.Exit(1)
	}
	if *markdown {
		fmt.Print(tbl.Markdown())
	} else {
		fmt.Print(tbl.Text())
	}
}
