// Command figures regenerates every table and figure of the paper's
// evaluation section (§IV): it runs the registered experiments on a
// deterministic parallel worker pool and writes gnuplot .dat series, CSV
// files, a notes summary and a machine-readable REPORT.json (wall times,
// message counts, series checksums) into the output directory, optionally
// with terminal ASCII previews.
//
// Output is byte-identical at every -workers setting — runs derive their
// randomness from the seed and the run index, never from scheduling — so
// -workers only changes wall time.
//
// By default it runs at 1/10 of the paper's scale (the shapes are already
// stable there); -full switches to the paper's 100,000 / 1,000,000 node
// workloads, which takes considerably longer.
//
// Examples:
//
//	figures                        # all experiments, 1/10 scale, ./out
//	figures -only fig05,table1     # a subset
//	figures -workers 8             # cap the worker pool
//	figures -full -out paperout    # paper-scale reproduction
//	figures -tracefile churn.csv   # monitor an empirical churn trace too
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"p2psize/internal/experiments"
	"p2psize/internal/fault"
	"p2psize/internal/monitor"
	"p2psize/internal/parallel"
	"p2psize/internal/plot"
	"p2psize/internal/registry"
	"p2psize/internal/trace"
)

func main() {
	var (
		outDir     = flag.String("out", "out", "output directory")
		scale      = flag.Int("scale", 10, "divide the paper's node counts by this factor")
		full       = flag.Bool("full", false, "run at the paper's full scale (overrides -scale)")
		only       = flag.String("only", "", "comma-separated experiment ids (default: all)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		workers    = flag.Int("workers", 0, "worker pool size (0 = all CPUs, 1 = sequential); output is identical at any setting")
		shards     = flag.Int("shards", 0, "shard count for the intra-round Aggregation/CYCLON sweeps (0 = auto-size; part of the output, unlike -workers)")
		shuffle    = flag.String("shuffle", "global", "sweep-order randomization of the sharded rounds: \"global\" (frozen serial-shuffle draw order) or \"local\" (per-shard shuffles, no serial prefix); part of the output, like -shards")
		replay     = flag.String("replay", "perinstance", "replay layout of the trace-* monitoring experiments: \"perinstance\" (one trace replay and clone per estimator) or \"shared\" (observe-only estimators on one cadence share a clone and replay); results are bit-identical either way, unlike -shards")
		costModel  = flag.String("costmodel", "BENCH_results.json", "suite report supplying measured wall times for longest-job-first scheduling (missing file = static fallback)")
		ascii      = flag.Bool("ascii", true, "print ASCII previews")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		traceFile  = flag.String("tracefile", "", "also run the continuous monitor on this empirical churn trace (.json or .csv, optionally .gz), reported as experiment trace-file")
		estimators = flag.String("estimators", "", "estimator roster of the trace-* monitoring experiments: comma-separated registry names/aliases, \"all\" or \"default\" (empty = default roster); part of the output")
		cadences   = flag.String("cadences", "", "monitor cadence spec for the trace-* experiments: base tick and/or name=value overrides, e.g. \"agg=100\" or \"5,agg=50\"; part of the output")
		faults     = flag.String("faults", "", "fault scenario every estimator runs under, e.g. \"drop=0.05,delay=2x,partition@40-60\" (empty = benign; the robustness-* experiments keep their own scenarios); part of the output")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *shards < 0 || *shards > parallel.MaxConfigShards {
		fatal(fmt.Errorf("-shards %d out of range [0, %d] (0 = auto-size)", *shards, parallel.MaxConfigShards))
	}
	params := experiments.Scaled(*scale)
	if *full {
		params = experiments.Defaults()
	}
	params.Seed = *seed
	params.Workers = *workers
	params.Shards = *shards
	mode, err := parallel.ParseShuffleMode(*shuffle)
	if err != nil {
		fatal(fmt.Errorf("-shuffle: %w", err))
	}
	params.Shuffle = mode
	rmode, err := monitor.ParseReplayMode(*replay)
	if err != nil {
		fatal(fmt.Errorf("-replay: %w", err))
	}
	params.Replay = rmode
	params.CostModel = experiments.LoadCostModel(*costModel)
	if *estimators != "" {
		roster, err := registry.Parse(*estimators)
		if err != nil {
			fatal(err)
		}
		for _, d := range roster {
			params.Estimators = append(params.Estimators, d.Name)
		}
	}
	if *cadences != "" {
		base, per, err := registry.ParseCadenceSpec(*cadences, params.TraceCadence)
		if err != nil {
			fatal(err)
		}
		params.TraceCadence = base
		params.Cadences = per
	}
	if *faults != "" {
		spec, err := fault.ParseSpec(*faults)
		if err != nil {
			fatal(err)
		}
		params.Faults = spec
	}

	var ids []string
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	// Load and validate the empirical trace up front: a typo in the path
	// or a horizon too short for the monitor cadence must fail fast, not
	// after hours of suite experiments.
	var loadedTrace *trace.Trace
	if *traceFile != "" {
		var err error
		if loadedTrace, err = trace.ReadFile(*traceFile); err != nil {
			fatal(err)
		}
		if loadedTrace.Horizon < params.TraceCadence {
			fatal(fmt.Errorf("trace %s: horizon %g is shorter than the monitor cadence %g; no sample would be taken",
				*traceFile, loadedTrace.Horizon, params.TraceCadence))
		}
	}

	report, figs, runErr := experiments.RunSuite(ids, params)
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	if loadedTrace != nil {
		// The empirical-trace monitor runs after the suite (its input is
		// external, so it is not in the registry) and is appended to the
		// report like any other experiment.
		start := time.Now()
		fig, err := experiments.RunTraceFigure("trace-file", loadedTrace, params)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		ids = append(ids, fig.ID)
		figs[fig.ID] = fig
		report.Experiments = append(report.Experiments, experiments.Summarize(fig, wall))
		report.TotalWallMS += float64(wall.Microseconds()) / 1000
	}

	var notes strings.Builder
	fmt.Fprintf(&notes, "# Measured notes (seed %d, N100k=%d, N1M=%d)\n\n",
		params.Seed, params.N100k, params.N1M)
	wallByID := make(map[string]float64, len(report.Experiments))
	for _, e := range report.Experiments {
		wallByID[e.ID] = e.WallMS
	}
	for _, id := range ids {
		fig, ok := figs[id]
		if !ok {
			continue // failure; reported via runErr below
		}
		fmt.Printf("== %s: %s (%.0fms)\n", fig.ID, fig.Title, wallByID[id])
		if len(fig.Series) > 0 {
			writeSeries(*outDir, fig)
			if *ascii {
				fmt.Println(plot.ASCII(72, 16, fig.Series...))
			}
		}
		fmt.Fprintf(&notes, "## %s — %s\n\n", fig.ID, fig.Title)
		for _, n := range fig.Notes {
			fmt.Printf("   note: %s\n", n)
			fmt.Fprintf(&notes, "- %s\n", n)
		}
		fmt.Fprintln(&notes)
		fmt.Println()
	}
	notesPath := filepath.Join(*outDir, "NOTES.md")
	if err := os.WriteFile(notesPath, []byte(notes.String()), 0o644); err != nil {
		fatal(err)
	}
	reportPath := filepath.Join(*outDir, "REPORT.json")
	if err := report.WriteFile(reportPath); err != nil {
		fatal(err)
	}
	fmt.Printf("notes written to %s\n", notesPath)
	fmt.Printf("suite report written to %s (%d experiments, %.0fms total, %d workers)\n",
		reportPath, len(report.Experiments), report.TotalWallMS, report.Workers)
	if runErr != nil {
		fatal(runErr)
	}
}

func writeSeries(outDir string, fig *experiments.Figure) {
	datPath := filepath.Join(outDir, fig.ID+".dat")
	f, err := os.Create(datPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s\n# x: %s, y: %s\n", fig.Title, fig.XLabel, fig.YLabel)
	if err := plot.WriteDAT(f, fig.Series...); err != nil {
		fatal(err)
	}
	// CSV only when the series share one x grid (dynamic aggregation
	// figures record the real size at a finer resolution).
	aligned := true
	for _, s := range fig.Series[1:] {
		if s.Len() != fig.Series[0].Len() {
			aligned = false
			break
		}
	}
	if aligned {
		csvPath := filepath.Join(outDir, fig.ID+".csv")
		cf, err := os.Create(csvPath)
		if err != nil {
			fatal(err)
		}
		defer cf.Close()
		if err := plot.WriteCSV(cf, fig.Series...); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
