package p2psize

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func mustNet(t *testing.T, opts NetworkOptions) *Network {
	t.Helper()
	n, err := NewNetwork(opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkDefaults(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 5000, Seed: 1})
	if n.Size() != 5000 {
		t.Fatalf("Size = %d", n.Size())
	}
	// Paper: heterogeneous max 10 → average ≈ 7.2.
	if d := n.AvgDegree(); d < 6 || d > 8.5 {
		t.Fatalf("AvgDegree = %.2f", d)
	}
	if n.MaxObservedDegree() > 10 {
		t.Fatalf("MaxObservedDegree = %d", n.MaxObservedDegree())
	}
	if !n.IsConnected() {
		t.Fatal("default network disconnected")
	}
	if n.Messages() != 0 {
		t.Fatal("fresh network has metered messages")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	bad := []NetworkOptions{
		{Nodes: 0},
		{Nodes: 10, MaxDegree: -1},
		{Nodes: 10, Topology: Homogeneous, MaxDegree: 10},
		{Nodes: 2, Topology: ScaleFree, MaxDegree: 3},
		{Nodes: 2, Topology: Ring},
		{Nodes: 10, Topology: Topology(99)},
	}
	for _, opts := range bad {
		if _, err := NewNetwork(opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}

func TestTopologyString(t *testing.T) {
	for topo, want := range map[Topology]string{
		Heterogeneous: "heterogeneous",
		Homogeneous:   "homogeneous",
		ScaleFree:     "scale-free",
		Ring:          "ring",
	} {
		if topo.String() != want {
			t.Fatalf("%d.String() = %q", topo, topo.String())
		}
	}
	if !strings.Contains(Topology(42).String(), "42") {
		t.Fatal("unknown topology string")
	}
}

func TestScaleFreeNetwork(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 5000, Topology: ScaleFree, Seed: 2})
	if d := n.AvgDegree(); math.Abs(d-6) > 1 {
		t.Fatalf("BA m=3 average degree = %.2f, want ≈6", d)
	}
	if n.MaxObservedDegree() < 50 {
		t.Fatalf("no hub: max degree %d", n.MaxObservedDegree())
	}
	degrees, counts := n.DegreeCounts()
	if len(degrees) == 0 || len(degrees) != len(counts) {
		t.Fatal("DegreeCounts broken")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := mustNet(t, NetworkOptions{Nodes: 1000, Seed: 7})
	b := mustNet(t, NetworkOptions{Nodes: 1000, Seed: 7})
	if a.AvgDegree() != b.AvgDegree() {
		t.Fatal("same seed produced different networks")
	}
}

func TestChurnOperations(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 1000, Seed: 3})
	if got := n.Join(); got != 1001 {
		t.Fatalf("Join -> %d", got)
	}
	n.JoinMany(99)
	if n.Size() != 1100 {
		t.Fatalf("after JoinMany: %d", n.Size())
	}
	if !n.LeaveRandom() {
		t.Fatal("LeaveRandom failed")
	}
	removed := n.LeaveFraction(0.25)
	if removed < 270 || removed > 280 {
		t.Fatalf("LeaveFraction removed %d", removed)
	}
	if n.LeaveFraction(-1) != 0 {
		t.Fatal("negative fraction removed peers")
	}
	if n.LargestComponent() < 1 {
		t.Fatal("no component left")
	}
}

func TestAllEstimatorsOnStaticNetwork(t *testing.T) {
	const size = 3000
	cases := []struct {
		est Estimator
		tol float64
	}{
		{NewSampleCollide(SampleCollideOptions{L: 100, Seed: 11}), 0.3},
		{NewHopsSampling(HopsSamplingOptions{Seed: 12}), 0.45},
		{NewAggregation(AggregationOptions{Seed: 13}), 0.05},
	}
	for _, c := range cases {
		n := mustNet(t, NetworkOptions{Nodes: size, Seed: 4})
		got, err := c.est.Estimate(n)
		if err != nil {
			t.Fatalf("%s: %v", c.est.Name(), err)
		}
		if math.Abs(got-size)/size > c.tol {
			t.Fatalf("%s estimate %.0f, truth %d", c.est.Name(), got, size)
		}
		if n.Messages() == 0 {
			t.Fatalf("%s metered no messages", c.est.Name())
		}
	}
}

func TestEstimatorNamesAndOptions(t *testing.T) {
	if name := NewSampleCollide(SampleCollideOptions{L: 10}).Name(); !strings.Contains(name, "l=10") {
		t.Fatalf("name = %q", name)
	}
	if name := NewHopsSampling(HopsSamplingOptions{MinHopsReporting: 3}).Name(); !strings.Contains(name, "minHops=3") {
		t.Fatalf("name = %q", name)
	}
	if name := NewAggregation(AggregationOptions{Rounds: 40}).Name(); !strings.Contains(name, "rounds=40") {
		t.Fatalf("name = %q", name)
	}
}

func TestMLEOption(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 2000, Seed: 5})
	est := NewSampleCollide(SampleCollideOptions{L: 100, UseMLE: true, Seed: 14})
	got, err := est.Estimate(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2000)/2000 > 0.3 {
		t.Fatalf("MLE estimate %.0f", got)
	}
}

func TestMessagesByKind(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 500, Seed: 6})
	if _, err := NewSampleCollide(SampleCollideOptions{L: 20, Seed: 15}).Estimate(n); err != nil {
		t.Fatal(err)
	}
	byKind := n.MessagesByKind()
	if byKind["walk"] == 0 || byKind["sample-return"] == 0 {
		t.Fatalf("MessagesByKind = %v", byKind)
	}
	n.ResetMessages()
	if n.Messages() != 0 {
		t.Fatal("ResetMessages did not clear")
	}
}

func TestSmoothedEstimator(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 2000, Seed: 8})
	raw := NewSampleCollide(SampleCollideOptions{L: 20, Seed: 16})
	sm := Smoothed(raw, 10)
	if !strings.Contains(sm.Name(), "last10runs") {
		t.Fatalf("name = %q", sm.Name())
	}
	vals, err := RunRepeated(sm, n, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Smoothed tail must be closer to truth than the worst raw run
	// typically is; just check it is plausible.
	last := vals[len(vals)-1]
	if math.Abs(last-2000)/2000 > 0.25 {
		t.Fatalf("smoothed estimate %.0f", last)
	}
	if def := Smoothed(raw, 0); !strings.Contains(def.Name(), "last10runs") {
		t.Fatal("Smoothed default k != 10")
	}
}

func TestRunRepeatedValidation(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 100, Seed: 9})
	if _, err := RunRepeated(NewSampleCollide(SampleCollideOptions{L: 5, Seed: 17}), n, 0); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 800, Seed: 10})
	var buf bytes.Buffer
	if err := n.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadNetwork(&buf, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 800 || loaded.AvgDegree() != n.AvgDegree() {
		t.Fatalf("loaded size %d avg %.2f", loaded.Size(), loaded.AvgDegree())
	}
	// Churn still works on a loaded network.
	loaded.JoinMany(5)
	if loaded.Size() != 805 {
		t.Fatal("join on loaded network failed")
	}
	if _, err := LoadNetwork(strings.NewReader("garbage"), 0, 1); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestRingTopology(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 100, Topology: Ring, Seed: 11})
	if n.AvgDegree() != 2 {
		t.Fatalf("ring avg degree = %g", n.AvgDegree())
	}
	// Sampling on a ring needs a huge T to mix; with the default T the
	// estimate is biased but the call must still work.
	if _, err := NewSampleCollide(SampleCollideOptions{L: 5, Seed: 18}).Estimate(n); err != nil {
		t.Fatal(err)
	}
}

func TestHomogeneousTopology(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 2000, Topology: Homogeneous, MaxDegree: 8, Seed: 12})
	if d := n.AvgDegree(); math.Abs(d-8) > 0.5 {
		t.Fatalf("homogeneous avg degree = %.2f", d)
	}
}

func TestSmallWorldTopology(t *testing.T) {
	n := mustNet(t, NetworkOptions{Nodes: 3000, Topology: SmallWorld, Seed: 15})
	// Default lattice k=4 → degree ≈8.
	if d := n.AvgDegree(); math.Abs(d-8) > 0.2 {
		t.Fatalf("small-world avg degree = %.2f, want ≈8", d)
	}
	if !n.IsConnected() {
		t.Fatal("small-world disconnected")
	}
	if SmallWorld.String() != "small-world" {
		t.Fatalf("String = %q", SmallWorld.String())
	}
	// Estimators work on it (the generally-applicable claim).
	est := NewSampleCollide(SampleCollideOptions{L: 100, Seed: 22})
	got, err := est.Estimate(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3000)/3000 > 0.35 {
		t.Fatalf("estimate %.0f on small world", got)
	}
	// Validation paths.
	if _, err := NewNetwork(NetworkOptions{Nodes: 5, Topology: SmallWorld, MaxDegree: 4}); err == nil {
		t.Fatal("tiny small world accepted")
	}
	if _, err := NewNetwork(NetworkOptions{Nodes: 100, Topology: SmallWorld, RewireProb: 2}); err == nil {
		t.Fatal("RewireProb > 1 accepted")
	}
}

func TestRandomTourEstimator(t *testing.T) {
	const size = 500
	n := mustNet(t, NetworkOptions{Nodes: size, Seed: 13})
	est := NewRandomTour(RandomTourOptions{Tours: 200, Seed: 19})
	if !strings.Contains(est.Name(), "tours=200") {
		t.Fatalf("name = %q", est.Name())
	}
	got, err := est.Estimate(n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-size)/size > 0.3 {
		t.Fatalf("random tour estimate %.0f, truth %d", got, size)
	}
	if n.Messages() == 0 {
		t.Fatal("no messages metered")
	}
}

func TestPollingEstimator(t *testing.T) {
	const size = 4000
	n := mustNet(t, NetworkOptions{Nodes: size, Seed: 14})
	est := NewPolling(PollingOptions{ResponseProb: 0.1, Seed: 20})
	if !strings.Contains(est.Name(), "p=0.1") {
		t.Fatalf("name = %q", est.Name())
	}
	sum := 0.0
	for i := 0; i < 5; i++ {
		got, err := est.Estimate(n)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	if mean := sum / 5; math.Abs(mean-size)/size > 0.1 {
		t.Fatalf("polling mean estimate %.0f, truth %d", mean, size)
	}
	// Direct replies must meter fewer messages than routed.
	n.ResetMessages()
	direct := NewPolling(PollingOptions{ResponseProb: 0.1, DirectReplies: true, Seed: 21})
	if _, err := direct.Estimate(n); err != nil {
		t.Fatal(err)
	}
	directCost := n.Messages()
	n.ResetMessages()
	routed := NewPolling(PollingOptions{ResponseProb: 0.1, Seed: 21})
	if _, err := routed.Estimate(n); err != nil {
		t.Fatal(err)
	}
	if n.Messages() <= directCost {
		t.Fatalf("routed cost %d not above direct %d", n.Messages(), directCost)
	}
}
